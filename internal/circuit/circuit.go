// Package circuit provides the gate-level netlist representation used by
// every other part of the VACSEM reproduction: benchmark generators,
// logic-synthesis passes, the word-parallel simulator, the approximation
// miters and the circuit-aware CNF encoder.
//
// A Circuit is a DAG of Nodes identified by dense integer ids. Node 0 is
// always the constant-0 node. Builders (AddInput, AddGate, ...) keep the
// node list in topological order: every fanin id is strictly smaller than
// the id of the node that uses it. Parsers that cannot guarantee this call
// Normalize, which re-sorts the nodes topologically.
package circuit

import (
	"fmt"
	"sort"
)

// Kind enumerates the supported node functions.
type Kind uint8

// Node kinds. Const0 is the constant-0 source (node id 0 in every circuit).
// Input nodes have no fanins. Buf and Not take one fanin; And through Xnor
// take two; Mux takes three (select, then-0, then-1) and Maj takes three.
const (
	Const0 Kind = iota
	Input
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Mux // Mux(s, a, b) = b if s else a
	Maj // Maj(a, b, c) = at least two of a, b, c
	numKinds
)

var kindNames = [numKinds]string{
	"const0", "input", "buf", "not", "and", "nand", "or", "nor",
	"xor", "xnor", "mux", "maj",
}

// String returns the lower-case mnemonic of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FaninCount returns the number of fanins a node of this kind must have.
func (k Kind) FaninCount() int {
	switch k {
	case Const0, Input:
		return 0
	case Buf, Not:
		return 1
	case Mux, Maj:
		return 3
	default:
		return 2
	}
}

// IsGate reports whether the kind is a logic gate (has fanins).
func (k Kind) IsGate() bool { return k != Const0 && k != Input }

// Eval computes the Boolean function of the kind on scalar inputs.
func (k Kind) Eval(in []bool) bool {
	switch k {
	case Const0:
		return false
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And:
		return in[0] && in[1]
	case Nand:
		return !(in[0] && in[1])
	case Or:
		return in[0] || in[1]
	case Nor:
		return !(in[0] || in[1])
	case Xor:
		return in[0] != in[1]
	case Xnor:
		return in[0] == in[1]
	case Mux:
		if in[0] {
			return in[2]
		}
		return in[1]
	case Maj:
		n := 0
		for _, b := range in {
			if b {
				n++
			}
		}
		return n >= 2
	default:
		panic("circuit: Eval on " + k.String())
	}
}

// EvalWord computes the function of the kind on 64 patterns at once.
// The slice holds one 64-bit simulation word per fanin.
func (k Kind) EvalWord(in []uint64) uint64 {
	switch k {
	case Const0:
		return 0
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And:
		return in[0] & in[1]
	case Nand:
		return ^(in[0] & in[1])
	case Or:
		return in[0] | in[1]
	case Nor:
		return ^(in[0] | in[1])
	case Xor:
		return in[0] ^ in[1]
	case Xnor:
		return ^(in[0] ^ in[1])
	case Mux:
		return (in[0] & in[2]) | (^in[0] & in[1])
	case Maj:
		return (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2])
	default:
		panic("circuit: EvalWord on " + k.String())
	}
}

// Node is a single vertex of the netlist DAG.
type Node struct {
	Kind   Kind
	Fanins []int
	Name   string // optional; inputs and outputs usually carry names
}

// Circuit is a combinational gate-level netlist.
//
// Nodes[0] is always the Const0 node. Inputs lists the primary-input node
// ids in declaration order, Outputs the primary-output node ids (an output
// may be any node, including an input or the constant).
type Circuit struct {
	Name    string
	Nodes   []Node
	Inputs  []int
	Outputs []int

	outputNames []string
}

// New returns an empty circuit containing only the constant-0 node.
func New(name string) *Circuit {
	return &Circuit{
		Name:  name,
		Nodes: []Node{{Kind: Const0}},
	}
}

// NumNodes returns the total number of nodes, including Const0 and inputs.
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// NumGates returns the number of logic gates (excluding inputs, the
// constant node, and buffers, which are wiring artifacts).
func (c *Circuit) NumGates() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd.Kind.IsGate() && nd.Kind != Buf {
			n++
		}
	}
	return n
}

// AddInput appends a new primary input and returns its node id.
func (c *Circuit) AddInput(name string) int {
	id := len(c.Nodes)
	c.Nodes = append(c.Nodes, Node{Kind: Input, Name: name})
	c.Inputs = append(c.Inputs, id)
	return id
}

// AddGate appends a gate of the given kind and returns its node id.
// It panics if the fanin count does not match the kind or if a fanin id
// is out of range (not yet defined), preserving topological order.
func (c *Circuit) AddGate(k Kind, fanins ...int) int {
	if !k.IsGate() {
		panic("circuit: AddGate with non-gate kind " + k.String())
	}
	if len(fanins) != k.FaninCount() {
		panic(fmt.Sprintf("circuit: %s needs %d fanins, got %d", k, k.FaninCount(), len(fanins)))
	}
	id := len(c.Nodes)
	for _, f := range fanins {
		if f < 0 || f >= id {
			panic(fmt.Sprintf("circuit: fanin %d out of range for new node %d", f, id))
		}
	}
	c.Nodes = append(c.Nodes, Node{Kind: k, Fanins: append([]int(nil), fanins...)})
	return id
}

// Const1 returns a node that is constant 1, creating a Not of Const0 on
// first use.
func (c *Circuit) Const1() int {
	for id, nd := range c.Nodes {
		if nd.Kind == Not && nd.Fanins[0] == 0 {
			return id
		}
	}
	return c.AddGate(Not, 0)
}

// SetOutputs replaces the primary-output list.
func (c *Circuit) SetOutputs(ids ...int) {
	for _, id := range ids {
		if id < 0 || id >= len(c.Nodes) {
			panic(fmt.Sprintf("circuit: output id %d out of range", id))
		}
	}
	c.Outputs = append(c.Outputs[:0], ids...)
}

// ClearOutputs removes every primary output (and its name), keeping the
// logic intact. Builders that anchor temporary outputs through a
// synthesis pass use it to re-purpose the circuit afterwards.
func (c *Circuit) ClearOutputs() {
	c.Outputs = c.Outputs[:0]
	c.outputNames = c.outputNames[:0]
}

// AddOutput appends a primary output with an optional name.
func (c *Circuit) AddOutput(id int, name string) {
	if id < 0 || id >= len(c.Nodes) {
		panic(fmt.Sprintf("circuit: output id %d out of range", id))
	}
	for len(c.outputNames) < len(c.Outputs) {
		c.outputNames = append(c.outputNames, "")
	}
	c.Outputs = append(c.Outputs, id)
	c.outputNames = append(c.outputNames, name)
}

// OutputName returns the name attached to the i-th output, or a generated
// "po<i>" placeholder when none was set.
func (c *Circuit) OutputName(i int) string {
	if i < len(c.outputNames) && c.outputNames[i] != "" {
		return c.outputNames[i]
	}
	return fmt.Sprintf("po%d", i)
}

// SetOutputName names the i-th output.
func (c *Circuit) SetOutputName(i int, name string) {
	for len(c.outputNames) < len(c.Outputs) {
		c.outputNames = append(c.outputNames, "")
	}
	c.outputNames[i] = name
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	cp := &Circuit{
		Name:        c.Name,
		Nodes:       make([]Node, len(c.Nodes)),
		Inputs:      append([]int(nil), c.Inputs...),
		Outputs:     append([]int(nil), c.Outputs...),
		outputNames: append([]string(nil), c.outputNames...),
	}
	for i, nd := range c.Nodes {
		cp.Nodes[i] = Node{Kind: nd.Kind, Name: nd.Name}
		if nd.Fanins != nil {
			cp.Nodes[i].Fanins = append([]int(nil), nd.Fanins...)
		}
	}
	return cp
}

// Validate checks structural invariants: node 0 is Const0, fanin counts
// match kinds, fanin ids precede their users (topological order), input
// ids are Input nodes, and output ids are in range.
func (c *Circuit) Validate() error {
	if len(c.Nodes) == 0 || c.Nodes[0].Kind != Const0 {
		return fmt.Errorf("circuit %q: node 0 must be const0", c.Name)
	}
	for id, nd := range c.Nodes {
		if id > 0 && nd.Kind == Const0 {
			return fmt.Errorf("circuit %q: node %d: const0 duplicated", c.Name, id)
		}
		if len(nd.Fanins) != nd.Kind.FaninCount() {
			return fmt.Errorf("circuit %q: node %d (%s): has %d fanins, want %d",
				c.Name, id, nd.Kind, len(nd.Fanins), nd.Kind.FaninCount())
		}
		for _, f := range nd.Fanins {
			if f < 0 || f >= id {
				return fmt.Errorf("circuit %q: node %d (%s): fanin %d not topologically earlier",
					c.Name, id, nd.Kind, f)
			}
		}
	}
	for _, id := range c.Inputs {
		if id <= 0 || id >= len(c.Nodes) || c.Nodes[id].Kind != Input {
			return fmt.Errorf("circuit %q: input id %d is not an Input node", c.Name, id)
		}
	}
	seen := make(map[int]bool, len(c.Inputs))
	for _, id := range c.Inputs {
		if seen[id] {
			return fmt.Errorf("circuit %q: input id %d listed twice", c.Name, id)
		}
		seen[id] = true
	}
	nInputNodes := 0
	for _, nd := range c.Nodes {
		if nd.Kind == Input {
			nInputNodes++
		}
	}
	if nInputNodes != len(c.Inputs) {
		return fmt.Errorf("circuit %q: %d Input nodes but %d registered inputs",
			c.Name, nInputNodes, len(c.Inputs))
	}
	for _, id := range c.Outputs {
		if id < 0 || id >= len(c.Nodes) {
			return fmt.Errorf("circuit %q: output id %d out of range", c.Name, id)
		}
	}
	return nil
}

// Fanouts returns, for every node, the list of node ids that use it as a
// fanin.
func (c *Circuit) Fanouts() [][]int {
	out := make([][]int, len(c.Nodes))
	for id, nd := range c.Nodes {
		for _, f := range nd.Fanins {
			out[f] = append(out[f], id)
		}
	}
	return out
}

// Levels returns the logic depth of every node (inputs and constants are
// level 0) and the maximum depth of the circuit.
func (c *Circuit) Levels() ([]int, int) {
	lv := make([]int, len(c.Nodes))
	max := 0
	for id, nd := range c.Nodes {
		l := 0
		for _, f := range nd.Fanins {
			if lv[f] >= l {
				l = lv[f] + 1
			}
		}
		lv[id] = l
		if l > max {
			max = l
		}
	}
	return lv, max
}

// Support returns the sorted list of primary-input node ids in the
// transitive fanin of the given roots.
func (c *Circuit) Support(roots ...int) []int {
	mark := make([]bool, len(c.Nodes))
	stack := append([]int(nil), roots...)
	var sup []int
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || mark[id] {
			continue
		}
		mark[id] = true
		nd := &c.Nodes[id]
		if nd.Kind == Input {
			sup = append(sup, id)
			continue
		}
		stack = append(stack, nd.Fanins...)
	}
	sort.Ints(sup)
	return sup
}

// ConeMark marks the transitive fanin (including the roots) of the given
// roots and returns the marks indexed by node id.
func (c *Circuit) ConeMark(roots ...int) []bool {
	mark := make([]bool, len(c.Nodes))
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || mark[id] {
			continue
		}
		mark[id] = true
		stack = append(stack, c.Nodes[id].Fanins...)
	}
	return mark
}

// ExtractCone returns a new circuit containing only the logic feeding the
// selected outputs of c (by output index), together with the mapping from
// old node ids to new ones (-1 where a node was dropped). Primary inputs
// outside the cone are dropped; the caller must account for them when
// interpreting pattern counts.
func (c *Circuit) ExtractCone(outputIdx ...int) (*Circuit, []int) {
	roots := make([]int, len(outputIdx))
	for i, oi := range outputIdx {
		roots[i] = c.Outputs[oi]
	}
	mark := c.ConeMark(roots...)
	nc := New(c.Name + "_cone")
	old2new := make([]int, len(c.Nodes))
	for i := range old2new {
		old2new[i] = -1
	}
	old2new[0] = 0
	for id := 1; id < len(c.Nodes); id++ {
		if !mark[id] {
			continue
		}
		nd := &c.Nodes[id]
		switch nd.Kind {
		case Input:
			old2new[id] = nc.AddInput(nd.Name)
		default:
			fi := make([]int, len(nd.Fanins))
			for j, f := range nd.Fanins {
				fi[j] = old2new[f]
			}
			old2new[id] = nc.AddGate(nd.Kind, fi...)
		}
	}
	for i, oi := range outputIdx {
		nc.AddOutput(old2new[roots[i]], c.OutputName(oi))
	}
	return nc, old2new
}

// Append copies all logic of src into dst, mapping src's primary inputs to
// the dst node ids given in inputMap (len(inputMap) == src.NumInputs()).
// It returns the dst node ids corresponding to src's outputs.
func Append(dst, src *Circuit, inputMap []int) []int {
	if len(inputMap) != len(src.Inputs) {
		panic(fmt.Sprintf("circuit: Append input map has %d entries, want %d",
			len(inputMap), len(src.Inputs)))
	}
	old2new := make([]int, len(src.Nodes))
	for i := range old2new {
		old2new[i] = -1
	}
	old2new[0] = 0
	for i, id := range src.Inputs {
		old2new[id] = inputMap[i]
	}
	for id := 1; id < len(src.Nodes); id++ {
		nd := &src.Nodes[id]
		if nd.Kind == Input {
			continue
		}
		fi := make([]int, len(nd.Fanins))
		for j, f := range nd.Fanins {
			if old2new[f] < 0 {
				panic("circuit: Append encountered unmapped fanin")
			}
			fi[j] = old2new[f]
		}
		old2new[id] = dst.AddGate(nd.Kind, fi...)
	}
	outs := make([]int, len(src.Outputs))
	for i, o := range src.Outputs {
		outs[i] = old2new[o]
		if outs[i] < 0 {
			panic("circuit: Append output maps to dropped node")
		}
	}
	return outs
}

// Stats summarizes a circuit for reporting.
type Stats struct {
	Name    string
	Inputs  int
	Outputs int
	Nodes   int // logic gates, excluding const/input/buf
	Depth   int
	ByKind  map[Kind]int
}

// Stat computes the circuit statistics.
func (c *Circuit) Stat() Stats {
	s := Stats{
		Name:    c.Name,
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		ByKind:  make(map[Kind]int),
	}
	for _, nd := range c.Nodes {
		s.ByKind[nd.Kind]++
		if nd.Kind.IsGate() && nd.Kind != Buf {
			s.Nodes++
		}
	}
	_, s.Depth = c.Levels()
	return s
}

// String implements fmt.Stringer with a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d nodes, depth %d",
		s.Name, s.Inputs, s.Outputs, s.Nodes, s.Depth)
}
