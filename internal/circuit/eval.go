package circuit

import (
	"fmt"
	"math/big"
)

// Eval evaluates the circuit on a single input pattern. in[i] is the value
// of the i-th primary input (order of c.Inputs). It returns one value per
// primary output.
func (c *Circuit) Eval(in []bool) []bool {
	if len(in) != len(c.Inputs) {
		panic(fmt.Sprintf("circuit: Eval got %d inputs, want %d", len(in), len(c.Inputs)))
	}
	val := make([]bool, len(c.Nodes))
	inputPos := make(map[int]int, len(c.Inputs))
	for i, id := range c.Inputs {
		inputPos[id] = i
	}
	var buf [3]bool
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == Input {
			val[id] = in[inputPos[id]]
			continue
		}
		args := buf[:len(nd.Fanins)]
		for j, f := range nd.Fanins {
			args[j] = val[f]
		}
		val[id] = nd.Kind.Eval(args)
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = val[o]
	}
	return out
}

// EvalUint evaluates the circuit on an input pattern given as an unsigned
// integer whose bit i is the value of input i, and returns the outputs
// packed the same way (output j in bit j). It panics when the circuit has
// more than 64 inputs or outputs.
func (c *Circuit) EvalUint(x uint64) uint64 {
	if len(c.Inputs) > 64 || len(c.Outputs) > 64 {
		panic("circuit: EvalUint needs <= 64 inputs and outputs")
	}
	in := make([]bool, len(c.Inputs))
	for i := range in {
		in[i] = x>>uint(i)&1 == 1
	}
	out := c.Eval(in)
	var y uint64
	for j, b := range out {
		if b {
			y |= 1 << uint(j)
		}
	}
	return y
}

// EvalBig evaluates the circuit on an input pattern encoded in a big.Int
// (bit i of x is input i) and returns the outputs as a big.Int (bit j of
// the result is output j). It supports arbitrary widths.
func (c *Circuit) EvalBig(x *big.Int) *big.Int {
	in := make([]bool, len(c.Inputs))
	for i := range in {
		in[i] = x.Bit(i) == 1
	}
	out := c.Eval(in)
	y := new(big.Int)
	for j, b := range out {
		if b {
			y.SetBit(y, j, 1)
		}
	}
	return y
}

// Normalize re-sorts the nodes into a topological order (inputs and the
// constant first, then gates by dependency). It is needed after parsing
// formats that permit forward references. The receiver is modified in
// place. It returns an error when the netlist contains a combinational
// cycle.
func (c *Circuit) Normalize() error {
	n := len(c.Nodes)
	old2new := make([]int, n)
	for i := range old2new {
		old2new[i] = -1
	}
	order := make([]int, 0, n)
	// Iterative DFS with a cycle check (colors: 0 white, 1 gray, 2 black).
	color := make([]uint8, n)
	type frame struct {
		id   int
		next int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if color[root] != 0 {
			continue
		}
		stack = append(stack[:0], frame{root, 0})
		color[root] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nd := &c.Nodes[f.id]
			if f.next < len(nd.Fanins) {
				ch := nd.Fanins[f.next]
				f.next++
				switch color[ch] {
				case 0:
					color[ch] = 1
					stack = append(stack, frame{ch, 0})
				case 1:
					return fmt.Errorf("circuit %q: combinational cycle through node %d", c.Name, ch)
				}
				continue
			}
			color[f.id] = 2
			order = append(order, f.id)
			stack = stack[:len(stack)-1]
		}
	}
	// Rebuild: const0 first, then in DFS finish order.
	newNodes := make([]Node, 0, n)
	newNodes = append(newNodes, Node{Kind: Const0})
	old2new[0] = 0
	for _, id := range order {
		if id == 0 {
			continue
		}
		nd := c.Nodes[id]
		fi := make([]int, len(nd.Fanins))
		for j, f := range nd.Fanins {
			fi[j] = old2new[f]
		}
		old2new[id] = len(newNodes)
		newNodes = append(newNodes, Node{Kind: nd.Kind, Fanins: fi, Name: nd.Name})
	}
	for i, id := range c.Inputs {
		c.Inputs[i] = old2new[id]
	}
	for i, id := range c.Outputs {
		c.Outputs[i] = old2new[id]
	}
	c.Nodes = newNodes
	return nil
}
