package circuit

import (
	"math/big"
	"testing"
	"testing/quick"
)

func mkAndOr(t *testing.T) *Circuit {
	t.Helper()
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(And, a, b)
	g2 := c.AddGate(Or, g1, d)
	c.AddOutput(g2, "y")
	return c
}

func TestKindString(t *testing.T) {
	if And.String() != "and" || Xnor.String() != "xnor" || Const0.String() != "const0" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind must still render")
	}
}

func TestKindFaninCount(t *testing.T) {
	cases := map[Kind]int{
		Const0: 0, Input: 0, Buf: 1, Not: 1, And: 2, Nand: 2,
		Or: 2, Nor: 2, Xor: 2, Xnor: 2, Mux: 3, Maj: 3,
	}
	for k, n := range cases {
		if k.FaninCount() != n {
			t.Errorf("%v.FaninCount() = %d, want %d", k, k.FaninCount(), n)
		}
	}
}

func TestKindEvalMatrix(t *testing.T) {
	f := func(k Kind, a, b bool) bool {
		return k.Eval([]bool{a, b})
	}
	type row struct {
		k    Kind
		vals [4]bool // 00 01 10 11 (a,b)
	}
	rows := []row{
		{And, [4]bool{false, false, false, true}},
		{Nand, [4]bool{true, true, true, false}},
		{Or, [4]bool{false, true, true, true}},
		{Nor, [4]bool{true, false, false, false}},
		{Xor, [4]bool{false, true, true, false}},
		{Xnor, [4]bool{true, false, false, true}},
	}
	for _, r := range rows {
		i := 0
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				if f(r.k, a, b) != r.vals[i] {
					t.Errorf("%v(%v,%v) = %v", r.k, a, b, f(r.k, a, b))
				}
				i++
			}
		}
	}
}

// TestEvalWordMatchesEval: word evaluation must agree with scalar
// evaluation bit by bit for every kind (property test).
func TestEvalWordMatchesEval(t *testing.T) {
	kinds := []Kind{Buf, Not, And, Nand, Or, Nor, Xor, Xnor, Mux, Maj}
	f := func(w0, w1, w2 uint64) bool {
		for _, k := range kinds {
			n := k.FaninCount()
			in := []uint64{w0, w1, w2}[:n]
			w := k.EvalWord(in)
			for bit := 0; bit < 64; bit += 7 {
				args := make([]bool, n)
				for j := range args {
					args[j] = in[j]>>uint(bit)&1 == 1
				}
				if (w>>uint(bit)&1 == 1) != k.Eval(args) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddGatePanics(t *testing.T) {
	c := New("p")
	a := c.AddInput("a")
	assertPanic(t, "fanin count", func() { c.AddGate(And, a) })
	assertPanic(t, "forward ref", func() { c.AddGate(Not, 99) })
	assertPanic(t, "non-gate", func() { c.AddGate(Input) })
}

func assertPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestValidate(t *testing.T) {
	c := mkAndOr(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Break it: cyclic/forward fanin.
	bad := c.Clone()
	bad.Nodes[4].Fanins[0] = 5
	if err := bad.Validate(); err == nil {
		t.Error("forward fanin not caught")
	}
	bad2 := c.Clone()
	bad2.Outputs[0] = 99
	if err := bad2.Validate(); err == nil {
		t.Error("bad output not caught")
	}
	bad3 := c.Clone()
	bad3.Inputs = append(bad3.Inputs, bad3.Inputs[0])
	if err := bad3.Validate(); err == nil {
		t.Error("duplicate input not caught")
	}
}

func TestCloneIndependent(t *testing.T) {
	c := mkAndOr(t)
	cp := c.Clone()
	cp.Nodes[5].Kind = And
	cp.Nodes[5].Fanins[0] = 0
	if c.Nodes[5].Kind != Or || c.Nodes[5].Fanins[0] == 0 {
		t.Error("Clone shares state with original")
	}
}

func TestEvalAndEvalUint(t *testing.T) {
	c := mkAndOr(t)
	// y = (a & b) | d
	for x := uint64(0); x < 8; x++ {
		a := x&1 == 1
		b := x>>1&1 == 1
		d := x>>2&1 == 1
		want := (a && b) || d
		got := c.Eval([]bool{a, b, d})[0]
		if got != want {
			t.Errorf("Eval(%03b) = %v, want %v", x, got, want)
		}
		if (c.EvalUint(x) == 1) != want {
			t.Errorf("EvalUint(%03b) mismatch", x)
		}
	}
}

func TestEvalBigWide(t *testing.T) {
	// 70-input AND-tree: only the all-ones pattern yields 1.
	c := New("wide")
	ids := make([]int, 70)
	for i := range ids {
		ids[i] = c.AddInput("")
	}
	cur := ids[0]
	for _, id := range ids[1:] {
		cur = c.AddGate(And, cur, id)
	}
	c.AddOutput(cur, "y")
	x := new(big.Int)
	if c.EvalBig(x).Sign() != 0 {
		t.Error("AND-tree of zeros should be 0")
	}
	for i := 0; i < 70; i++ {
		x.SetBit(x, i, 1)
	}
	if c.EvalBig(x).Bit(0) != 1 {
		t.Error("AND-tree of ones should be 1")
	}
}

func TestSupportAndCone(t *testing.T) {
	c := New("s")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(And, a, b)
	g2 := c.AddGate(Not, d)
	c.AddOutput(g1, "y0")
	c.AddOutput(g2, "y1")
	sup := c.Support(g1)
	if len(sup) != 2 || sup[0] != a || sup[1] != b {
		t.Errorf("Support(g1) = %v", sup)
	}
	mark := c.ConeMark(g2)
	if !mark[g2] || !mark[d] || mark[a] || mark[g1] {
		t.Errorf("ConeMark wrong: %v", mark)
	}
}

func TestExtractCone(t *testing.T) {
	c := New("e")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(And, a, b)
	g2 := c.AddGate(Xor, d, g1)
	c.AddOutput(g1, "y0")
	c.AddOutput(g2, "y1")
	cone, _ := c.ExtractCone(0)
	if cone.NumInputs() != 2 || cone.NumOutputs() != 1 {
		t.Fatalf("cone: %d PI %d PO", cone.NumInputs(), cone.NumOutputs())
	}
	if err := cone.Validate(); err != nil {
		t.Fatal(err)
	}
	// Function preserved: And of the two remaining inputs.
	for x := uint64(0); x < 4; x++ {
		want := x == 3
		if (cone.EvalUint(x) == 1) != want {
			t.Errorf("cone(%02b) wrong", x)
		}
	}
}

func TestAppend(t *testing.T) {
	inner := New("inner")
	a := inner.AddInput("a")
	b := inner.AddInput("b")
	inner.AddOutput(inner.AddGate(Xor, a, b), "y")

	outer := New("outer")
	x := outer.AddInput("x")
	y := outer.AddInput("y")
	outs := Append(outer, inner, []int{x, y})
	outs2 := Append(outer, inner, []int{outs[0], y})
	outer.AddOutput(outs2[0], "z")
	// z = (x^y)^y = x
	for v := uint64(0); v < 4; v++ {
		if outer.EvalUint(v)&1 != v&1 {
			t.Errorf("Append composition wrong at %02b", v)
		}
	}
}

func TestLevelsAndStats(t *testing.T) {
	c := mkAndOr(t)
	lv, depth := c.Levels()
	if depth != 2 {
		t.Errorf("depth = %d, want 2", depth)
	}
	if lv[c.Outputs[0]] != 2 {
		t.Errorf("output level = %d", lv[c.Outputs[0]])
	}
	s := c.Stat()
	if s.Inputs != 3 || s.Outputs != 1 || s.Nodes != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestFanouts(t *testing.T) {
	c := mkAndOr(t)
	fo := c.Fanouts()
	// g1 (node 4) feeds g2 (node 5)
	if len(fo[4]) != 1 || fo[4][0] != 5 {
		t.Errorf("fanouts of g1 = %v", fo[4])
	}
}

func TestConst1Reuse(t *testing.T) {
	c := New("c1")
	one := c.Const1()
	if c.Const1() != one {
		t.Error("Const1 should be reused")
	}
	if c.Nodes[one].Kind != Not || c.Nodes[one].Fanins[0] != 0 {
		t.Error("Const1 must be Not(const0)")
	}
}

func TestOutputNames(t *testing.T) {
	c := New("n")
	a := c.AddInput("a")
	c.AddOutput(a, "first")
	c.AddOutput(a, "")
	if c.OutputName(0) != "first" {
		t.Errorf("OutputName(0) = %q", c.OutputName(0))
	}
	if c.OutputName(1) != "po1" {
		t.Errorf("OutputName(1) = %q", c.OutputName(1))
	}
	c.SetOutputName(1, "second")
	if c.OutputName(1) != "second" {
		t.Errorf("after SetOutputName: %q", c.OutputName(1))
	}
}

func TestNormalize(t *testing.T) {
	// Build a circuit with hand-scrambled node order via direct struct
	// manipulation, then Normalize.
	c := &Circuit{Name: "scrambled"}
	c.Nodes = []Node{
		{Kind: Const0},
		{Kind: And, Fanins: []int{3, 4}}, // forward refs
		{Kind: Or, Fanins: []int{1, 4}},
		{Kind: Input, Name: "a"},
		{Kind: Input, Name: "b"},
	}
	c.Inputs = []int{3, 4}
	c.Outputs = []int{2}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("normalized circuit invalid: %v", err)
	}
	// (a & b) | b == b
	for x := uint64(0); x < 4; x++ {
		want := x>>1&1 == 1
		if (c.EvalUint(x) == 1) != want {
			t.Errorf("Normalize changed function at %02b", x)
		}
	}
}

func TestNormalizeDetectsCycle(t *testing.T) {
	c := &Circuit{Name: "cyc"}
	c.Nodes = []Node{
		{Kind: Const0},
		{Kind: And, Fanins: []int{2, 3}},
		{Kind: Or, Fanins: []int{1, 3}},
		{Kind: Input, Name: "a"},
	}
	c.Inputs = []int{3}
	c.Outputs = []int{1}
	if err := c.Normalize(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestNumGatesExcludesBufAndInputs(t *testing.T) {
	c := New("g")
	a := c.AddInput("a")
	bf := c.AddGate(Buf, a)
	g := c.AddGate(Not, bf)
	c.AddOutput(g, "y")
	if c.NumGates() != 1 {
		t.Errorf("NumGates = %d, want 1 (buf excluded)", c.NumGates())
	}
}
