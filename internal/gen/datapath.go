package gen

import (
	"fmt"
	"math/rand"

	"vacsem/internal/circuit"
)

// BarrelShifter generates a logical right barrel shifter (the EPFL
// "bar"/barshift role): w data inputs plus ceil(log2 w) shift-amount
// inputs, w outputs. w must be a power of two.
func BarrelShifter(w int) *circuit.Circuit {
	if w&(w-1) != 0 || w == 0 {
		panic("gen: BarrelShifter width must be a power of two")
	}
	c := circuit.New(fmt.Sprintf("barshift%d", w))
	data := InputBus(c, "d", w)
	stages := 0
	for 1<<uint(stages) < w {
		stages++
	}
	sh := InputBus(c, "sh", stages)
	cur := data
	for s := 0; s < stages; s++ {
		shift := 1 << uint(s)
		next := make(Bus, w)
		for i := 0; i < w; i++ {
			from := 0 // shifted-in zero
			if i+shift < w {
				from = cur[i+shift]
			}
			next[i] = c.AddGate(circuit.Mux, sh[s], cur[i], from)
		}
		cur = next
	}
	OutputBus(c, "q", cur)
	return c
}

// PriorityEncoder generates a w-input priority encoder (the EPFL
// "priority" role): outputs the index of the highest-numbered asserted
// input (ceil(log2 w) bits) plus a valid flag. w must be a power of two.
func PriorityEncoder(w int) *circuit.Circuit {
	if w&(w-1) != 0 || w == 0 {
		panic("gen: PriorityEncoder width must be a power of two")
	}
	c := circuit.New(fmt.Sprintf("priority%d", w))
	in := InputBus(c, "r", w)
	bitsN := 0
	for 1<<uint(bitsN) < w {
		bitsN++
	}
	// Scan from the highest request downward with a mux chain: idx is the
	// index of the highest asserted bit.
	idx := make(Bus, bitsN)
	for j := range idx {
		idx[j] = 0
	}
	valid := 0
	for i := 0; i < w; i++ { // low to high; higher i wins
		for j := 0; j < bitsN; j++ {
			bit := 0
			if i>>uint(j)&1 == 1 {
				bit = c.Const1()
			}
			idx[j] = c.AddGate(circuit.Mux, in[i], idx[j], bit)
		}
		if valid == 0 {
			valid = in[i]
		} else {
			valid = c.AddGate(circuit.Or, valid, in[i])
		}
	}
	OutputBus(c, "idx", idx)
	c.AddOutput(valid, "valid")
	return c
}

// Decoder generates an n-to-2^n one-hot decoder (the EPFL "dec" role).
func Decoder(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("dec%d", n))
	in := InputBus(c, "a", n)
	inv := make(Bus, n)
	for i := range in {
		inv[i] = c.AddGate(circuit.Not, in[i])
	}
	for v := 0; v < 1<<uint(n); v++ {
		term := -1
		for i := 0; i < n; i++ {
			lit := in[i]
			if v>>uint(i)&1 == 0 {
				lit = inv[i]
			}
			if term < 0 {
				term = lit
			} else {
				term = c.AddGate(circuit.And, term, lit)
			}
		}
		c.AddOutput(term, fmt.Sprintf("y%d", v))
	}
	return c
}

// Comparator generates an n-bit unsigned comparator with outputs
// (a < b, a == b, a > b).
func Comparator(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("cmp%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	lt, eq := 0, c.Const1()
	// Scan MSB -> LSB.
	for i := n - 1; i >= 0; i-- {
		na := c.AddGate(circuit.Not, a[i])
		bitLT := c.AddGate(circuit.And, na, b[i])
		bitEQ := c.AddGate(circuit.Xnor, a[i], b[i])
		lt = c.AddGate(circuit.Or, lt, c.AddGate(circuit.And, eq, bitLT))
		eq = c.AddGate(circuit.And, eq, bitEQ)
	}
	gt := c.AddGate(circuit.Nor, lt, eq)
	c.AddOutput(lt, "lt")
	c.AddOutput(eq, "eq")
	c.AddOutput(gt, "gt")
	return c
}

// Parity generates the n-input parity (XOR) tree.
func Parity(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("parity%d", n))
	in := InputBus(c, "a", n)
	cur := []int(in)
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, c.AddGate(circuit.Xor, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	c.AddOutput(cur[0], "p")
	return c
}

// Int2Float generates the EPFL "int2float" role: an n-bit unsigned
// integer is converted to a small float with eBits of exponent and mBits
// of mantissa (no sign; values round toward zero; exponent saturates).
// Outputs: mantissa (mBits, without the hidden one), exponent (eBits).
func Int2Float(n, eBits, mBits int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("int2float%d", n))
	in := InputBus(c, "a", n)
	// Leading-one position (priority from MSB): exp = floor(log2 x) when
	// x != 0, else 0.
	// found_i = in[i] & none higher set.
	oneHot := make(Bus, n)
	noneHigher := c.Const1()
	for i := n - 1; i >= 0; i-- {
		oneHot[i] = c.AddGate(circuit.And, in[i], noneHigher)
		if i > 0 {
			noneHigher = c.AddGate(circuit.And, noneHigher,
				c.AddGate(circuit.Not, in[i]))
		}
	}
	// Exponent: binary encode of the leading-one index, saturated to
	// eBits.
	maxExp := 1<<uint(eBits) - 1
	exp := make(Bus, eBits)
	for j := range exp {
		exp[j] = 0
	}
	for i := 0; i < n; i++ {
		e := i
		if e > maxExp {
			e = maxExp
		}
		for j := 0; j < eBits; j++ {
			if e>>uint(j)&1 == 1 {
				exp[j] = c.AddGate(circuit.Or, exp[j], oneHot[i])
			}
		}
	}
	// Mantissa: the mBits bits following the leading one (zero-padded).
	man := make(Bus, mBits)
	for j := range man {
		man[j] = 0
	}
	for i := 0; i < n; i++ {
		// If leading one is at i, mantissa bit j (MSB-first j=mBits-1)
		// comes from in[i-1-(mBits-1-j)].
		for j := 0; j < mBits; j++ {
			src := i - (mBits - j)
			if src < 0 {
				continue
			}
			sel := c.AddGate(circuit.And, oneHot[i], in[src])
			man[j] = c.AddGate(circuit.Or, man[j], sel)
		}
	}
	OutputBus(c, "m", man)
	OutputBus(c, "e", exp)
	return c
}

// SinApprox generates a fixed-point sine-like polynomial datapath (the
// EPFL "sin" role): y = x - x^3 / 8 truncated, computed with two w x w
// multipliers and a subtractor on a w-bit input. The exact constant
// differs from 1/6, so this is an approximation structurally equivalent
// to a polynomial sine evaluator (dense multiplier logic), which is what
// matters for the verification workload. Outputs have w+1 bits.
func SinApprox(w int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("sin%d", w))
	x := InputBus(c, "x", w)
	sq := MultiplyArray(c, x, x)        // 2w bits
	cube := MultiplyArray(c, x, sq[:w]) // x * (x^2 mod 2^w), 2w bits
	// x^3 / 8: drop three low bits, keep w bits.
	shifted := make(Bus, w)
	for i := range shifted {
		if i+3 < len(cube) {
			shifted[i] = cube[i+3]
		} else {
			shifted[i] = 0
		}
	}
	diff, borrowN := RippleSub(c, Bus(x), shifted)
	OutputBus(c, "y", append(append(Bus{}, diff...), c.AddGate(circuit.Not, borrowN)))
	return c
}

// ControlLogic generates seeded pseudo-random two-level control logic
// (the stand-in for the EPFL ctrl/cavlc benchmarks): each output is an OR
// of `terms` AND-terms over random literal subsets. Deterministic in the
// seed.
func ControlLogic(name string, nPI, nPO, terms int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(name)
	in := InputBus(c, "x", nPI)
	inv := make(Bus, nPI)
	for i := range in {
		inv[i] = c.AddGate(circuit.Not, in[i])
	}
	for o := 0; o < nPO; o++ {
		or := -1
		for t := 0; t < terms; t++ {
			k := 2 + rng.Intn(nPI-1) // term width
			term := -1
			perm := rng.Perm(nPI)[:k]
			for _, i := range perm {
				lit := in[i]
				if rng.Intn(2) == 0 {
					lit = inv[i]
				}
				if term < 0 {
					term = lit
				} else {
					term = c.AddGate(circuit.And, term, lit)
				}
			}
			if or < 0 {
				or = term
			} else {
				or = c.AddGate(circuit.Or, or, term)
			}
		}
		c.AddOutput(or, fmt.Sprintf("y%d", o))
	}
	return c
}

// Router generates the EPFL "router" role stand-in: two w-bit data words
// and a w-bit grant mask; output i forwards a[i] when grant[i] is set and
// b[i] otherwise, with a parity tag over the selected word appended when
// tag is true. Inputs: 3w (+0); outputs: w (+1 with tag).
func Router(w int, tag bool) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("router%d", w))
	a := InputBus(c, "a", w)
	b := InputBus(c, "b", w)
	g := InputBus(c, "g", w)
	out := make(Bus, w)
	for i := 0; i < w; i++ {
		out[i] = c.AddGate(circuit.Mux, g[i], b[i], a[i])
	}
	OutputBus(c, "q", out)
	if tag {
		p := out[0]
		for i := 1; i < w; i++ {
			p = c.AddGate(circuit.Xor, p, out[i])
		}
		c.AddOutput(p, "tag")
	}
	return c
}
