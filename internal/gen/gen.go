// Package gen builds the benchmark circuits of the paper's Table III:
// adders and multipliers of parametric width, the BACS arithmetic blocks
// (squarer, absolute difference, butterfly, multiply-accumulate) and
// functional stand-ins for the EPFL suite (barrel shifter, priority
// encoder, decoder, int2float, sine approximation, and seeded control
// logic for ctrl/cavlc/router). All generators are deterministic.
//
// Buses are little-endian: index 0 is the least significant bit.
package gen

import (
	"fmt"

	"vacsem/internal/circuit"
)

// Bus is an ordered list of node ids representing a binary word,
// least-significant bit first.
type Bus []int

// InputBus adds w named inputs ("<prefix>0".."<prefix>{w-1}").
func InputBus(c *circuit.Circuit, prefix string, w int) Bus {
	b := make(Bus, w)
	for i := range b {
		b[i] = c.AddInput(fmt.Sprintf("%s%d", prefix, i))
	}
	return b
}

// OutputBus registers all bus bits as outputs named "<prefix>0"...
func OutputBus(c *circuit.Circuit, prefix string, b Bus) {
	for i, id := range b {
		c.AddOutput(id, fmt.Sprintf("%s%d", prefix, i))
	}
}

// fullAdder returns (sum, carry-out) of a+b+cin.
func fullAdder(c *circuit.Circuit, a, b, cin int) (int, int) {
	axb := c.AddGate(circuit.Xor, a, b)
	sum := c.AddGate(circuit.Xor, axb, cin)
	cout := c.AddGate(circuit.Maj, a, b, cin)
	return sum, cout
}

// halfAdder returns (sum, carry-out) of a+b.
func halfAdder(c *circuit.Circuit, a, b int) (int, int) {
	return c.AddGate(circuit.Xor, a, b), c.AddGate(circuit.And, a, b)
}

// RippleAdd builds a ripple-carry sum of two equal-width buses plus a
// carry-in node, returning the w sum bits and the carry-out.
func RippleAdd(c *circuit.Circuit, a, b Bus, cin int) (Bus, int) {
	if len(a) != len(b) {
		panic("gen: RippleAdd on unequal widths")
	}
	sum := make(Bus, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = fullAdder(c, a[i], b[i], carry)
	}
	return sum, carry
}

// RippleSub builds a - b in two's complement (a + ~b + 1), returning the
// w difference bits and the final carry (1 means a >= b).
func RippleSub(c *circuit.Circuit, a, b Bus) (Bus, int) {
	nb := make(Bus, len(b))
	for i := range b {
		nb[i] = c.AddGate(circuit.Not, b[i])
	}
	return RippleAdd(c, a, nb, c.Const1())
}

// RippleCarryAdder generates an n-bit adder: inputs a0..a{n-1}, b0..b{n-1};
// outputs s0..s{n-1} and carry-out s{n} (n+1 outputs, like the paper's
// adder benchmarks: 2n PIs, n+1 POs).
func RippleCarryAdder(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("adder%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	sum, cout := RippleAdd(c, a, b, 0)
	OutputBus(c, "s", append(append(Bus{}, sum...), cout))
	return c
}

// CarryLookaheadAdder generates an n-bit adder with 4-bit lookahead
// groups: same interface as RippleCarryAdder, different (flatter)
// structure.
func CarryLookaheadAdder(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("cla%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	p := make(Bus, n) // propagate
	g := make(Bus, n) // generate
	for i := 0; i < n; i++ {
		p[i] = c.AddGate(circuit.Xor, a[i], b[i])
		g[i] = c.AddGate(circuit.And, a[i], b[i])
	}
	carry := make(Bus, n+1)
	carry[0] = 0
	for base := 0; base < n; base += 4 {
		end := base + 4
		if end > n {
			end = n
		}
		for i := base; i < end; i++ {
			// c[i+1] = g[i] | p[i]&g[i-1] | ... | p[i..base]&c[base]
			term := carry[base]
			for k := base; k <= i; k++ {
				term = c.AddGate(circuit.And, term, p[k])
			}
			acc := term
			for k := base; k <= i; k++ {
				t := g[k]
				for l := k + 1; l <= i; l++ {
					t = c.AddGate(circuit.And, t, p[l])
				}
				acc = c.AddGate(circuit.Or, acc, t)
			}
			carry[i+1] = acc
		}
	}
	sum := make(Bus, n+1)
	for i := 0; i < n; i++ {
		sum[i] = c.AddGate(circuit.Xor, p[i], carry[i])
	}
	sum[n] = carry[n]
	OutputBus(c, "s", sum)
	return c
}

// CarrySelectAdder generates an n-bit carry-select adder with the given
// block size: each block computes both carry hypotheses and muxes.
func CarrySelectAdder(n, block int) *circuit.Circuit {
	if block < 1 {
		panic("gen: block size must be >= 1")
	}
	c := circuit.New(fmt.Sprintf("csel%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	sum := make(Bus, n+1)
	carry := 0 // const0 carry-in
	one := c.Const1()
	for base := 0; base < n; base += block {
		end := base + block
		if end > n {
			end = n
		}
		// two hypotheses
		s0 := make(Bus, end-base)
		s1 := make(Bus, end-base)
		c0, c1 := 0, one
		for i := base; i < end; i++ {
			s0[i-base], c0 = fullAdder(c, a[i], b[i], c0)
			s1[i-base], c1 = fullAdder(c, a[i], b[i], c1)
		}
		for i := base; i < end; i++ {
			sum[i] = c.AddGate(circuit.Mux, carry, s0[i-base], s1[i-base])
		}
		carry = c.AddGate(circuit.Mux, carry, c0, c1)
	}
	sum[n] = carry
	OutputBus(c, "s", sum)
	return c
}

// ArrayMultiplier generates an n x n array multiplier: inputs a, b
// (n bits each), outputs p0..p{2n-1} (like the paper's multN benchmarks:
// 2n PIs, 2n POs).
func ArrayMultiplier(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("mult%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	p := MultiplyArray(c, a, b)
	OutputBus(c, "p", p)
	return c
}

// MultiplyArray builds the partial-product array and ripple reduction of
// a*b inside an existing circuit, returning the len(a)+len(b) product
// bits.
func MultiplyArray(c *circuit.Circuit, a, b Bus) Bus {
	n, m := len(a), len(b)
	// rows[j] = a * b[j] shifted left j
	acc := make(Bus, n+m)
	for i := range acc {
		acc[i] = 0 // const0
	}
	for j := 0; j < m; j++ {
		row := make(Bus, n)
		for i := 0; i < n; i++ {
			row[i] = c.AddGate(circuit.And, a[i], b[j])
		}
		carry := 0
		for i := 0; i < n; i++ {
			acc[i+j], carry = fullAdder(c, acc[i+j], row[i], carry)
		}
		// propagate the carry through the remaining accumulator bits
		for i := n + j; i < n+m && carry != 0; i++ {
			acc[i], carry = halfAdder(c, acc[i], carry)
		}
	}
	return acc
}

// WallaceMultiplier generates an n x n multiplier with a Wallace-tree
// (carry-save) reduction followed by a final ripple adder — a structure
// with the same function as ArrayMultiplier but shallower depth.
func WallaceMultiplier(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("wallace%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	// Columns of partial-product bits.
	cols := make([][]int, 2*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			cols[i+j] = append(cols[i+j], c.AddGate(circuit.And, a[i], b[j]))
		}
	}
	// Reduce columns with full/half adders until each has <= 2 bits.
	for {
		reduced := false
		next := make([][]int, 2*n)
		for col := 0; col < 2*n; col++ {
			bitsHere := cols[col]
			for len(bitsHere) >= 3 {
				s, co := fullAdder(c, bitsHere[0], bitsHere[1], bitsHere[2])
				bitsHere = bitsHere[3:]
				next[col] = append(next[col], s)
				if col+1 < 2*n {
					next[col+1] = append(next[col+1], co)
				}
				reduced = true
			}
			if len(bitsHere) == 2 && len(cols[col]) > 2 {
				s, co := halfAdder(c, bitsHere[0], bitsHere[1])
				bitsHere = nil
				next[col] = append(next[col], s)
				if col+1 < 2*n {
					next[col+1] = append(next[col+1], co)
				}
				reduced = true
			}
			next[col] = append(next[col], bitsHere...)
		}
		cols = next
		if !reduced {
			break
		}
	}
	// Final carry-propagate addition of the two remaining rows.
	x := make(Bus, 2*n)
	y := make(Bus, 2*n)
	for col := 0; col < 2*n; col++ {
		switch len(cols[col]) {
		case 0:
			x[col], y[col] = 0, 0
		case 1:
			x[col], y[col] = cols[col][0], 0
		default:
			x[col], y[col] = cols[col][0], cols[col][1]
		}
	}
	p, _ := RippleAdd(c, x, y, 0)
	OutputBus(c, "p", p)
	return c
}

// MAC generates a multiply-accumulate unit: p = a*b + acc, with n-bit a
// and b and 2n-bit acc; outputs 2n+1 bits.
func MAC(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("mac%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	accIn := InputBus(c, "c", 2*n)
	prod := MultiplyArray(c, a, b)
	sum, cout := RippleAdd(c, prod, accIn, 0)
	OutputBus(c, "p", append(append(Bus{}, sum...), cout))
	return c
}

// AbsDiff generates |a - b| for two n-bit inputs: n outputs.
func AbsDiff(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("absdiff%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	d, geq := RippleSub(c, a, b) // d = a-b mod 2^n; geq = (a >= b)
	// If a < b, result is -(a-b) = ~d + 1.
	neg := c.AddGate(circuit.Not, geq)
	inv := make(Bus, n)
	for i := range d {
		inv[i] = c.AddGate(circuit.Xor, d[i], neg)
	}
	abs := make(Bus, n)
	carry := neg
	for i := range inv {
		abs[i], carry = halfAdder(c, inv[i], carry)
	}
	OutputBus(c, "d", abs)
	return c
}

// Squarer generates p = a*a for an n-bit input (the BACS "binsqrd" role):
// n PIs, 2n POs.
func Squarer(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("binsqrd%d", n))
	a := InputBus(c, "a", n)
	p := MultiplyArray(c, a, a)
	OutputBus(c, "p", p)
	return c
}

// Butterfly generates the radix-2 FFT butterfly on integer inputs:
// outputs (a+b, a-b) for two n-bit unsigned inputs; each output has n+1
// bits (the difference in two's complement with sign).
func Butterfly(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("butterfly%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	sum, cout := RippleAdd(c, a, b, 0)
	OutputBus(c, "s", append(append(Bus{}, sum...), cout))
	// a - b over n+1 bits two's complement (sign-extended by zero).
	nb := make(Bus, n)
	for i := range b {
		nb[i] = c.AddGate(circuit.Not, b[i])
	}
	diff, carry := RippleAdd(c, a, nb, c.Const1())
	// Sign bit: carry==1 means a>=b (positive); two's complement MSB is
	// ~carry for zero-extended operands.
	sign := c.AddGate(circuit.Not, carry)
	OutputBus(c, "d", append(append(Bus{}, diff...), sign))
	return c
}
