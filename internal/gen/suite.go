package gen

import (
	"fmt"
	"sort"

	"vacsem/internal/circuit"
)

// BinSquared generates the BACS "binsqrd" role: p = (a+b)^2 for two n-bit
// inputs (2n PIs, 2n+2 POs; n=8 gives the paper's 16 PI / 18 PO).
func BinSquared(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("binsqrd%d", n))
	a := InputBus(c, "a", n)
	b := InputBus(c, "b", n)
	sum, cout := RippleAdd(c, a, b, 0)
	s := append(append(Bus{}, sum...), cout) // n+1 bits
	p := MultiplyArray(c, s, s)              // 2n+2 bits
	OutputBus(c, "p", p)
	return c
}

// Benchmark describes one entry of the experimental suite (Table III).
type Benchmark struct {
	Name  string
	Type  string // "arith", "epfl", "bacs"
	Build func() *circuit.Circuit
}

// Suite returns the 20-circuit benchmark suite mirroring Table III of the
// paper. Interface widths match the table where the underlying function
// allows; the EPFL entries are functional stand-ins (see DESIGN.md).
func Suite() []Benchmark {
	return []Benchmark{
		{"adder32", "arith", func() *circuit.Circuit { return RippleCarryAdder(32) }},
		{"adder64", "arith", func() *circuit.Circuit { return RippleCarryAdder(64) }},
		{"adder128", "arith", func() *circuit.Circuit { return RippleCarryAdder(128) }},
		{"mult10", "arith", func() *circuit.Circuit { return ArrayMultiplier(10) }},
		{"mult12", "arith", func() *circuit.Circuit { return ArrayMultiplier(12) }},
		{"mult14", "arith", func() *circuit.Circuit { return ArrayMultiplier(14) }},
		{"mult15", "arith", func() *circuit.Circuit { return ArrayMultiplier(15) }},
		{"mult16", "arith", func() *circuit.Circuit { return ArrayMultiplier(16) }},
		{"ctrl", "epfl", func() *circuit.Circuit { return ControlLogic("ctrl", 7, 26, 6, 1001) }},
		{"cavlc", "epfl", func() *circuit.Circuit { return ControlLogic("cavlc", 10, 11, 12, 1002) }},
		{"dec", "epfl", func() *circuit.Circuit { return Decoder(8) }},
		{"int2float", "epfl", func() *circuit.Circuit { return Int2Float(11, 3, 4) }},
		{"barshift", "epfl", func() *circuit.Circuit { return BarrelShifter(128) }},
		{"sin", "epfl", func() *circuit.Circuit { return SinApprox(24) }},
		{"priority", "epfl", func() *circuit.Circuit { return PriorityEncoder(128) }},
		{"router", "epfl", func() *circuit.Circuit { return Router(20, true) }},
		{"binsqrd", "bacs", func() *circuit.Circuit { return BinSquared(8) }},
		{"absdiff", "bacs", func() *circuit.Circuit { return AbsDiff(8) }},
		{"butterfly", "bacs", func() *circuit.Circuit { return Butterfly(16) }},
		{"mac", "bacs", func() *circuit.Circuit { return MAC(4) }},
	}
}

// ByName builds a suite circuit by its Table III name. It also accepts
// parametric names of the form adderN and multN for arbitrary widths.
func ByName(name string) (*circuit.Circuit, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b.Build(), nil
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "adder%d", &n); err == nil && n > 0 {
		return RippleCarryAdder(n), nil
	}
	if _, err := fmt.Sscanf(name, "mult%d", &n); err == nil && n > 0 {
		return ArrayMultiplier(n), nil
	}
	known := make([]string, 0, 20)
	for _, b := range Suite() {
		known = append(known, b.Name)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("gen: unknown benchmark %q (known: %v, plus adderN/multN)", name, known)
}
