package gen

import (
	"math/big"
	"testing"
	"testing/quick"

	"vacsem/internal/circuit"
)

// evalWord drives the circuit with packed integer operands. operands[i]
// supplies the bits of the i-th input bus in declaration order; widths
// gives the bus widths.
func evalWord(c *circuit.Circuit, widths []int, operands []uint64) *big.Int {
	x := new(big.Int)
	bit := 0
	for i, w := range widths {
		for j := 0; j < w; j++ {
			if operands[i]>>uint(j)&1 == 1 {
				x.SetBit(x, bit, 1)
			}
			bit++
		}
	}
	return c.EvalBig(x)
}

func TestRippleCarryAdder(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		c := RippleCarryAdder(n)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.NumInputs() != 2*n || c.NumOutputs() != n+1 {
			t.Fatalf("adder%d: %d PI %d PO", n, c.NumInputs(), c.NumOutputs())
		}
		mask := uint64(1)<<uint(n) - 1
		f := func(a, b uint64) bool {
			a &= mask
			b &= mask
			got := evalWord(c, []int{n, n}, []uint64{a, b})
			return got.Uint64() == a+b
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("adder%d: %v", n, err)
		}
	}
}

func TestAdderVariantsAgree(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		rca := RippleCarryAdder(n)
		cla := CarryLookaheadAdder(n)
		csel := CarrySelectAdder(n, 3)
		mask := uint64(1)<<uint(n) - 1
		for a := uint64(0); a <= mask; a += 3 {
			for b := uint64(0); b <= mask; b += 5 {
				w := evalWord(rca, []int{n, n}, []uint64{a, b}).Uint64()
				if g := evalWord(cla, []int{n, n}, []uint64{a, b}).Uint64(); g != w {
					t.Fatalf("cla%d(%d,%d) = %d, want %d", n, a, b, g, w)
				}
				if g := evalWord(csel, []int{n, n}, []uint64{a, b}).Uint64(); g != w {
					t.Fatalf("csel%d(%d,%d) = %d, want %d", n, a, b, g, w)
				}
			}
		}
	}
}

func TestArrayMultiplier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		c := ArrayMultiplier(n)
		if c.NumInputs() != 2*n || c.NumOutputs() != 2*n {
			t.Fatalf("mult%d: %d PI %d PO", n, c.NumInputs(), c.NumOutputs())
		}
		mask := uint64(1)<<uint(n) - 1
		f := func(a, b uint64) bool {
			a &= mask
			b &= mask
			return evalWord(c, []int{n, n}, []uint64{a, b}).Uint64() == a*b
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("mult%d: %v", n, err)
		}
	}
}

func TestWallaceMatchesArray(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		w := WallaceMultiplier(n)
		mask := uint64(1)<<uint(n) - 1
		for a := uint64(0); a <= mask; a++ {
			for b := uint64(0); b <= mask; b++ {
				got := evalWord(w, []int{n, n}, []uint64{a, b}).Uint64()
				if got != a*b {
					t.Fatalf("wallace%d(%d,%d) = %d, want %d", n, a, b, got, a*b)
				}
			}
		}
	}
}

func TestMAC(t *testing.T) {
	n := 4
	c := MAC(n)
	if c.NumInputs() != 4*n || c.NumOutputs() != 2*n+1 {
		t.Fatalf("mac%d: %d PI %d PO", n, c.NumInputs(), c.NumOutputs())
	}
	f := func(a, b, acc uint64) bool {
		a &= 15
		b &= 15
		acc &= 255
		got := evalWord(c, []int{n, n, 2 * n}, []uint64{a, b, acc}).Uint64()
		return got == a*b+acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAbsDiff(t *testing.T) {
	n := 6
	c := AbsDiff(n)
	mask := uint64(1)<<uint(n) - 1
	f := func(a, b uint64) bool {
		a &= mask
		b &= mask
		want := a - b
		if b > a {
			want = b - a
		}
		return evalWord(c, []int{n, n}, []uint64{a, b}).Uint64() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSquarerAndBinSquared(t *testing.T) {
	sq := Squarer(5)
	for a := uint64(0); a < 32; a++ {
		if got := evalWord(sq, []int{5}, []uint64{a}).Uint64(); got != a*a {
			t.Fatalf("squarer(%d) = %d, want %d", a, got, a*a)
		}
	}
	bs := BinSquared(4)
	if bs.NumInputs() != 8 || bs.NumOutputs() != 10 {
		t.Fatalf("binsqrd4: %d PI %d PO", bs.NumInputs(), bs.NumOutputs())
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			want := (a + b) * (a + b)
			if got := evalWord(bs, []int{4, 4}, []uint64{a, b}).Uint64(); got != want {
				t.Fatalf("binsqrd(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestButterfly(t *testing.T) {
	n := 5
	c := Butterfly(n)
	if c.NumOutputs() != 2*(n+1) {
		t.Fatalf("butterfly: %d PO", c.NumOutputs())
	}
	mask := uint64(1)<<uint(n) - 1
	f := func(a, b uint64) bool {
		a &= mask
		b &= mask
		out := evalWord(c, []int{n, n}, []uint64{a, b})
		sum := uint64(0)
		for j := 0; j <= n; j++ {
			sum |= uint64(out.Bit(j)) << uint(j)
		}
		diff := uint64(0)
		for j := 0; j <= n; j++ {
			diff |= uint64(out.Bit(n+1+j)) << uint(j)
		}
		wantDiff := (a - b) & (uint64(1)<<uint(n+1) - 1) // two's complement n+1 bits
		return sum == a+b && diff == wantDiff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBarrelShifter(t *testing.T) {
	w := 16
	c := BarrelShifter(w)
	if c.NumInputs() != w+4 || c.NumOutputs() != w {
		t.Fatalf("barshift%d: %d PI %d PO", w, c.NumInputs(), c.NumOutputs())
	}
	f := func(d, sh uint64) bool {
		d &= 0xFFFF
		sh &= 15
		got := evalWord(c, []int{w, 4}, []uint64{d, sh}).Uint64()
		return got == d>>sh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPriorityEncoder(t *testing.T) {
	w := 16
	c := PriorityEncoder(w)
	if c.NumInputs() != w || c.NumOutputs() != 5 {
		t.Fatalf("priority%d: %d PI %d PO", w, c.NumInputs(), c.NumOutputs())
	}
	for r := uint64(0); r < 1<<16; r += 97 {
		out := evalWord(c, []int{w}, []uint64{r}).Uint64()
		idx := out & 15
		valid := out >> 4 & 1
		if r == 0 {
			if valid != 0 {
				t.Fatalf("priority(0): valid = %d", valid)
			}
			continue
		}
		want := uint64(63 - uint(leadingZeros64(r)))
		if valid != 1 || idx != want {
			t.Fatalf("priority(%b): idx %d valid %d, want %d", r, idx, valid, want)
		}
	}
}

func leadingZeros64(x uint64) int {
	n := 0
	for x>>63 == 0 && n < 64 {
		x <<= 1
		n++
	}
	return n
}

func TestDecoder(t *testing.T) {
	n := 4
	c := Decoder(n)
	if c.NumInputs() != n || c.NumOutputs() != 16 {
		t.Fatalf("dec%d: %d PI %d PO", n, c.NumInputs(), c.NumOutputs())
	}
	for a := uint64(0); a < 16; a++ {
		out := evalWord(c, []int{n}, []uint64{a}).Uint64()
		if out != 1<<a {
			t.Fatalf("dec(%d) = %b, want one-hot bit %d", a, out, a)
		}
	}
}

func TestComparator(t *testing.T) {
	n := 5
	c := Comparator(n)
	for a := uint64(0); a < 32; a += 3 {
		for b := uint64(0); b < 32; b += 2 {
			out := evalWord(c, []int{n, n}, []uint64{a, b}).Uint64()
			lt, eq, gt := out&1, out>>1&1, out>>2&1
			if (lt == 1) != (a < b) || (eq == 1) != (a == b) || (gt == 1) != (a > b) {
				t.Fatalf("cmp(%d,%d) = lt%d eq%d gt%d", a, b, lt, eq, gt)
			}
		}
	}
}

func TestParity(t *testing.T) {
	for _, n := range []int{1, 2, 7, 12} {
		c := Parity(n)
		mask := uint64(1)<<uint(n) - 1
		for a := uint64(0); a <= mask; a += 1 + mask/17 {
			want := uint64(popcount(a)) & 1
			if got := evalWord(c, []int{n}, []uint64{a}).Uint64(); got != want {
				t.Fatalf("parity%d(%b) = %d, want %d", n, a, got, want)
			}
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestInt2Float(t *testing.T) {
	c := Int2Float(11, 3, 4)
	if c.NumInputs() != 11 || c.NumOutputs() != 7 {
		t.Fatalf("int2float: %d PI %d PO", c.NumInputs(), c.NumOutputs())
	}
	for _, x := range []uint64{0, 1, 2, 3, 5, 16, 100, 1023, 2047} {
		out := evalWord(c, []int{11}, []uint64{x}).Uint64()
		man := out & 15
		exp := out >> 4 & 7
		if x == 0 {
			if exp != 0 || man != 0 {
				t.Fatalf("int2float(0) = man %d exp %d", man, exp)
			}
			continue
		}
		lead := 63 - leadingZeros64(x)
		wantExp := uint64(lead)
		if wantExp > 7 {
			wantExp = 7
		}
		if exp != wantExp {
			t.Fatalf("int2float(%d): exp %d, want %d", x, exp, wantExp)
		}
		// mantissa: 4 bits after the leading one (toward LSB), zero-padded
		var wantMan uint64
		for j := 0; j < 4; j++ {
			src := lead - (4 - j)
			if src >= 0 && x>>uint(src)&1 == 1 {
				wantMan |= 1 << uint(j)
			}
		}
		if man != wantMan {
			t.Fatalf("int2float(%d): man %b, want %b", x, man, wantMan)
		}
	}
}

func TestRouter(t *testing.T) {
	c := Router(8, true)
	if c.NumInputs() != 24 || c.NumOutputs() != 9 {
		t.Fatalf("router: %d PI %d PO", c.NumInputs(), c.NumOutputs())
	}
	f := func(a, b, g uint64) bool {
		a &= 255
		b &= 255
		g &= 255
		out := evalWord(c, []int{8, 8, 8}, []uint64{a, b, g}).Uint64()
		want := (a & g) | (b &^ g)
		tag := uint64(popcount(want)) & 1
		return out == want|tag<<8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSinApproxStructure(t *testing.T) {
	c := SinApprox(6)
	if c.NumInputs() != 6 || c.NumOutputs() != 7 {
		t.Fatalf("sin: %d PI %d PO", c.NumInputs(), c.NumOutputs())
	}
	// Behavioural check of the documented polynomial: y = (x - (x^3 mod
	// 2^12)/8 mod 2^6-ish two's complement window). Verify against direct
	// computation.
	for x := uint64(0); x < 64; x++ {
		out := evalWord(c, []int{6}, []uint64{x}).Uint64()
		cube := (x * ((x * x) & 63)) // x * (x^2 mod 2^6)
		sub := (cube >> 3) & 63
		want := (x - sub) & 127 // 6 bits + sign
		if got := out & 127; got != want {
			t.Fatalf("sin(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestControlLogicDeterministic(t *testing.T) {
	a := ControlLogic("ctrl", 7, 26, 6, 42)
	b := ControlLogic("ctrl", 7, 26, 6, 42)
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("ControlLogic not deterministic in node count")
	}
	for x := uint64(0); x < 128; x++ {
		if a.EvalUint(x) != b.EvalUint(x) {
			t.Fatalf("ControlLogic not deterministic at input %d", x)
		}
	}
	if a.NumInputs() != 7 || a.NumOutputs() != 26 {
		t.Fatalf("ctrl: %d PI %d PO", a.NumInputs(), a.NumOutputs())
	}
}

func TestSuiteBuildsAndValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("suite construction is slow in -short mode")
	}
	want := map[string][2]int{
		"adder32": {64, 33}, "adder64": {128, 65}, "adder128": {256, 129},
		"mult10": {20, 20}, "mult12": {24, 24}, "mult14": {28, 28},
		"mult15": {30, 30}, "mult16": {32, 32},
		"ctrl": {7, 26}, "cavlc": {10, 11}, "dec": {8, 256},
		"int2float": {11, 7}, "barshift": {135, 128}, "sin": {24, 25},
		"priority": {128, 8},
		"binsqrd":  {16, 18}, "absdiff": {16, 8}, "butterfly": {32, 34},
	}
	for _, b := range Suite() {
		c := b.Build()
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if io, ok := want[b.Name]; ok {
			if c.NumInputs() != io[0] || c.NumOutputs() != io[1] {
				t.Errorf("%s: %d PI %d PO, want %d/%d (Table III)",
					b.Name, c.NumInputs(), c.NumOutputs(), io[0], io[1])
			}
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("adder32")
	if err != nil || c.NumInputs() != 64 {
		t.Fatalf("ByName(adder32): %v", err)
	}
	c, err = ByName("adder8")
	if err != nil || c.NumInputs() != 16 {
		t.Fatalf("ByName(adder8): %v", err)
	}
	c, err = ByName("mult6")
	if err != nil || c.NumInputs() != 12 {
		t.Fatalf("ByName(mult6): %v", err)
	}
	if _, err = ByName("nonsense"); err == nil {
		t.Fatal("ByName(nonsense) should fail")
	}
}
