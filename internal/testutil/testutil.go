// Package testutil provides shared helpers for the test suites: seeded
// random circuit generation and brute-force reference computations.
package testutil

import (
	"math/rand"

	"vacsem/internal/circuit"
)

// gateKinds are the kinds RandomCircuit draws from.
var gateKinds = []circuit.Kind{
	circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
	circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf,
	circuit.Mux, circuit.Maj,
}

// RandomCircuit builds a seeded random circuit with nIn inputs, nGates
// gates and nOut outputs. Gate fanins are drawn from all earlier nodes,
// biased toward recent ones so the circuit has depth.
func RandomCircuit(nIn, nGates, nOut int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("rand")
	for i := 0; i < nIn; i++ {
		c.AddInput("")
	}
	pick := func() int {
		n := c.NumNodes()
		if rng.Intn(3) == 0 {
			return rng.Intn(n)
		}
		// bias toward the most recent half
		lo := n / 2
		return lo + rng.Intn(n-lo)
	}
	for g := 0; g < nGates; g++ {
		k := gateKinds[rng.Intn(len(gateKinds))]
		fi := make([]int, k.FaninCount())
		for j := range fi {
			fi[j] = pick()
		}
		c.AddGate(k, fi...)
	}
	for o := 0; o < nOut; o++ {
		// prefer late nodes as outputs
		n := c.NumNodes()
		id := n - 1 - rng.Intn((n+1)/2)
		if id < 0 {
			id = 0
		}
		c.AddOutput(id, "")
	}
	return c
}

// CountOnesBrute counts, for each output of c, the input patterns that set
// it to 1 by evaluating every pattern individually (independent of the
// word-parallel simulator, so the two can cross-check each other).
func CountOnesBrute(c *circuit.Circuit) []uint64 {
	n := c.NumInputs()
	if n > 24 {
		panic("testutil: CountOnesBrute beyond 24 inputs")
	}
	counts := make([]uint64, c.NumOutputs())
	in := make([]bool, n)
	for x := uint64(0); x < 1<<uint(n); x++ {
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
		}
		out := c.Eval(in)
		for j, b := range out {
			if b {
				counts[j]++
			}
		}
	}
	return counts
}

// SameFunction reports whether two circuits with identical input counts
// compute the same outputs on every input pattern (exhaustive; inputs
// must be <= 20).
func SameFunction(a, b *circuit.Circuit) bool {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return false
	}
	n := a.NumInputs()
	if n > 20 {
		panic("testutil: SameFunction beyond 20 inputs")
	}
	in := make([]bool, n)
	for x := uint64(0); x < 1<<uint(n); x++ {
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
		}
		oa := a.Eval(in)
		ob := b.Eval(in)
		for j := range oa {
			if oa[j] != ob[j] {
				return false
			}
		}
	}
	return true
}
