//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in; heavy
// stochastic tests use it to scale their trial counts down, since race
// instrumentation slows the counter hot loops by roughly 5x.
const RaceEnabled = true
