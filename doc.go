// Package vacsem is a pure-Go implementation of VACSEM — formal
// verification of average errors in approximate circuits using
// simulation-enhanced model counting (Meng, Wang, Mai, Qian, De Micheli,
// DATE 2024).
//
// # What it does
//
// Given an exact circuit and an approximate version of it, vacsem
// computes exact values of average-error metrics over the full input
// space:
//
//   - error rate (ER): the fraction of input patterns producing any
//     wrong output bit,
//   - mean error distance (MED): the average |int(y) - int(y')|,
//   - mean Hamming distance (MHD): the average number of flipped bits,
//   - threshold probability: P(|int(y) - int(y')| > T).
//
// Verification builds an approximation miter, splits it into per-bit
// sub-miters, shrinks each with built-in logic synthesis, encodes it to
// CNF while preserving the circuit topology, and counts models with a
// DPLL-style #SAT engine that dynamically switches to word-parallel
// circuit simulation on dense residual components — the core idea of the
// paper. Counts are exact big integers, so 128-bit adders (2^256 input
// patterns) verify in well under a second.
//
// # Quick start
//
//	exact := vacsem.RippleCarryAdder(32)
//	approx := vacsem.LowerORAdder(32, 8)
//	res, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
//	if err != nil { ... }
//	fmt.Println("ER =", res.Value) // exact rational
//
// Three interchangeable engines allow the paper's comparisons:
// MethodVACSEM (simulation-enhanced counting), MethodDPLL (the same
// counter with simulation disabled — the role GANAK plays in the paper)
// and MethodEnum (exhaustive bit-parallel simulation).
//
// The cmd/vacsem CLI verifies circuits stored as BLIF or ASCII AIGER
// files; cmd/circgen generates the benchmark suite; cmd/vacsem-bench
// regenerates the paper's result tables.
package vacsem
