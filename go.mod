module vacsem

go 1.22
